(* Project lint CLI: whole-program static analysis over lib/**/*.ml
   (plus bench/, bin/ and test/) enforcing the layering invariants the
   simulation depends on but the type system cannot see.  All sources
   are parsed into one unit (compiler-libs, parse-only — a violation
   fails even if the code compiles) and Analysis builds a
   module-qualified call graph with transitive effect summaries; see
   analysis.ml for the rule inventory and the approximations.

   Rules (each with a negative fixture under fixtures/):

     syntactic (per raw site, identifier paths alias-expanded):
       disk-io, nondet, stdout, lru-to-list, workload-disk,
       workload-clock, scenario-entry, metric-name, metric-dup,
       span-name, span-dup
     span exception-safety:
       span-unsafe   a raw Bus.span_begin whose span_end is not on the
                     raise path (not Bus.with_span / Fun.protect)
     transitive (via the effect fixpoint; fixtures/program/ is a
     multi-file unit where the raw site is in a *different* module
     than the flagged caller):
       transitive-disk-io, transitive-nondet, transitive-clock
     allowlist hygiene (--check-stale-allowlist):
       stale-allowlist   an allowlist entry that suppresses zero
                         violations is a hole with no justification

   Scope notes: bench/bin print reports, so stdout applies only to
   lib/; test/ may exercise Disk, Lru.to_list and raw spans directly,
   so those rules skip it; metric/span registration is collected from
   lib/ only (harnesses read counters back through the same
   get-or-create API).  scenario-entry runs the other way round: it
   covers test/ and lib/ (the workload tree owns the raw machinery and
   is exempt), keeping Crashpoint sweeps and Faulty.attach behind the
   seed-managed Lfs_scenario DSL.

   Allowlist: "<rule> <path-suffix>" lines; a violation is suppressed
   when its rule matches and its file path ends with the suffix.  With
   --check-stale-allowlist, an entry that suppresses nothing fails the
   run (see tools/lint/allowlist for the justified holes).

   Observability catalog: --catalog emits every metric name, span name
   (including Profile.op_name's op_* literals) and bus event
   constructor as JSON; --catalog-md renders the doc block committed
   in EXPERIMENTS.md; --check-catalog verifies the committed
   BENCH_*.json baselines reference only known metric names and that
   the doc block matches the catalog exactly, so a renamed metric
   cannot silently orphan a gated baseline.

   Usage:
     lint.exe [--allowlist FILE] [--check-stale-allowlist] [--json]
              [--summary FILE] PATH...
     lint.exe --catalog PATH...      observability catalog as JSON
     lint.exe --catalog-md PATH...   catalog doc block (for EXPERIMENTS.md)
     lint.exe --check-catalog [--baseline FILE]... --doc FILE PATH...
     lint.exe --self-test DIR        check fixture expectations: each
                                     fixture's first line is
                                     "(* expect: <rule> *)" (or
                                     "(* expect: clean *)", or the file
                                     is named good*.ml and must lint
                                     clean); DIR/program is linted as
                                     one multi-file unit; DIR/stale.allowlist
                                     exercises stale-entry detection

   Exit status: 0 clean, 1 violations (or fixture expectation/drift
   failures), 2 usage / IO errors. *)

module A = Analysis

(* --- file discovery ------------------------------------------------- *)

let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun name -> ml_files (Filename.concat path name))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let analyze_paths paths =
  let files = List.concat_map ml_files paths in
  if files = [] then begin
    Printf.eprintf "lint: no .ml files under %s\n" (String.concat " " paths);
    exit 2
  end;
  A.analyze (List.map (fun f -> (f, read_file f)) files)

(* --- allowlist ------------------------------------------------------- *)

type allow_entry = { a_rule : string; a_suffix : string; a_line : int }

let load_allowlist file =
  let ic = open_in file in
  let rec loop lineno acc =
    match input_line ic with
    | exception End_of_file ->
        close_in_noerr ic;
        List.rev acc
    | line -> (
        let payload =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match
          String.split_on_char ' ' payload
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun s -> s <> "")
        with
        | [ a_rule; a_suffix ] ->
            loop (lineno + 1) ({ a_rule; a_suffix; a_line = lineno } :: acc)
        | [] -> loop (lineno + 1) acc
        | _ ->
            Printf.eprintf "%s: malformed allowlist line %S\n" file line;
            exit 2)
  in
  loop 1 []

let entry_matches e (v : A.violation) =
  e.a_rule = v.A.rule && String.ends_with ~suffix:e.a_suffix v.A.file

(* Returns (live violations, stale entries). *)
let apply_allowlist entries violations =
  let hits = Hashtbl.create 16 in
  let live =
    List.filter
      (fun v ->
        match List.find_opt (fun e -> entry_matches e v) entries with
        | Some e ->
            Hashtbl.replace hits (e.a_rule, e.a_suffix) ();
            false
        | None -> true)
      violations
  in
  let stale =
    List.filter (fun e -> not (Hashtbl.mem hits (e.a_rule, e.a_suffix))) entries
  in
  (live, stale)

(* --- output ---------------------------------------------------------- *)

let print_text (v : A.violation) =
  Printf.printf "%s:%d: [%s] %s\n" v.A.file v.A.line v.A.rule v.A.message

let print_json violations =
  print_string "[\n";
  List.iteri
    (fun i (v : A.violation) ->
      Printf.printf
        "  { \"file\": %s, \"line\": %d, \"rule\": %s, \"message\": %s }%s\n"
        (A.json_string v.A.file) v.A.line (A.json_string v.A.rule)
        (A.json_string v.A.message)
        (if i = List.length violations - 1 then "" else ","))
    violations;
  print_string "]\n"

(* --- catalog cross-check --------------------------------------------- *)

let check_catalog program baselines doc =
  let cat = A.catalog program in
  let known = List.map (fun s -> s.A.s_name) in
  let metrics = known cat.A.cat_metrics in
  let spans = known cat.A.cat_spans in
  let events = known cat.A.cat_events in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun file ->
      List.iter
        (fun name ->
          if not (List.mem name metrics) then
            err
              "%s: references metric %S which is not registered anywhere in \
               lib/ (renamed? regenerate the baseline, see EXPERIMENTS.md)"
              file name)
        (A.baseline_metric_refs (read_file file)))
    baselines;
  (match doc with
  | None -> ()
  | Some file ->
      let dm, ds, de = A.doc_catalog (read_file file) in
      if dm = [] && ds = [] && de = [] then
        err "%s: no lint-catalog block found (run lint.exe --catalog-md)" file;
      let diff label doc_names cat_names =
        List.iter
          (fun n ->
            if not (List.mem n cat_names) then
              err "%s: documents %s %S which no longer exists (run lint.exe \
                   --catalog-md)" file label n)
          doc_names;
        List.iter
          (fun n ->
            if not (List.mem n doc_names) then
              err "%s: %s %S is not documented (run lint.exe --catalog-md)"
                file label n)
          cat_names
      in
      diff "metric" dm metrics;
      diff "span" ds spans;
      diff "event" de events);
  match List.rev !errors with
  | [] ->
      Printf.printf
        "lint: catalog in sync (%d metrics, %d spans, %d events; %d \
         baseline(s))\n"
        (List.length metrics) (List.length spans) (List.length events)
        (List.length baselines)
  | es ->
      List.iter (fun e -> Printf.printf "lint: catalog drift: %s\n" e) es;
      exit 1

(* --- self-test over fixtures ----------------------------------------- *)

let expected_rule file =
  let ic = open_in file in
  let first = try input_line ic with End_of_file -> "" in
  close_in_noerr ic;
  let prefix = "(* expect: " and suffix = " *)" in
  if
    String.starts_with ~prefix first
    && String.ends_with ~suffix first
    && String.length first > String.length prefix + String.length suffix
  then
    Some
      (String.sub first (String.length prefix)
         (String.length first - String.length prefix - String.length suffix))
  else None

(* One fixture file's verdict against the rules fired in it. *)
let check_expectation failures file fired =
  let base = Filename.basename file in
  match expected_rule file with
  | Some "clean" ->
      if fired = [] then Printf.printf "fixture %s: ok (clean)\n" base
      else begin
        incr failures;
        Printf.printf "fixture %s: FAILED — expected clean, fired [%s]\n" base
          (String.concat "; " fired)
      end
  | Some rule ->
      if List.mem rule fired then
        Printf.printf "fixture %s: ok (%s)\n" base rule
      else begin
        incr failures;
        Printf.printf "fixture %s: FAILED — expected rule %s, fired [%s]\n"
          base rule
          (String.concat "; " fired)
      end
  | None ->
      if String.starts_with ~prefix:"good" base then
        if fired = [] then Printf.printf "fixture %s: ok (clean)\n" base
        else begin
          incr failures;
          Printf.printf "fixture %s: FAILED — expected clean, fired [%s]\n"
            base
            (String.concat "; " fired)
        end
      else begin
        incr failures;
        Printf.printf
          "fixture %s: FAILED — missing \"(* expect: <rule> *)\" header\n" base
      end

let fired_in program file =
  List.filter_map
    (fun (v : A.violation) -> if v.A.file = file then Some v.A.rule else None)
    program.A.p_violations

let self_test dir =
  let failures = ref 0 in
  let program_dir = Filename.concat dir "program" in
  let in_program f = String.starts_with ~prefix:(program_dir ^ "/") f in
  (* Single-file fixtures: each is its own unit (the transitive pass
     still runs; unresolved sanctioned modules are assumed benign). *)
  List.iter
    (fun file ->
      if not (in_program file) then begin
        let program = A.analyze [ (file, read_file file) ] in
        check_expectation failures file (fired_in program file)
      end)
    (ml_files dir);
  (* Multi-file program fixtures: one unit, expectations per file.  The
     acceptance case lives here: the raw effect is two calls away from
     the flagged module, invisible to the syntactic rules. *)
  if Sys.file_exists program_dir && Sys.is_directory program_dir then begin
    let files = ml_files program_dir in
    let program = A.analyze (List.map (fun f -> (f, read_file f)) files) in
    List.iter
      (fun file -> check_expectation failures file (fired_in program file))
      files;
    (* Stale-allowlist detection: entries whose suffix starts with
       "never" must be reported stale against the program unit; the
       others must be live. *)
    let stale_file = Filename.concat dir "stale.allowlist" in
    if Sys.file_exists stale_file then begin
      let entries = load_allowlist stale_file in
      let _live, stale = apply_allowlist entries program.A.p_violations in
      let expect_stale e = String.starts_with ~prefix:"never" e.a_suffix in
      let ok =
        List.for_all
          (fun e -> List.memq e stale = expect_stale e)
          entries
        && List.exists expect_stale entries
        && List.exists (fun e -> not (expect_stale e)) entries
      in
      if ok then
        Printf.printf "fixture stale.allowlist: ok (stale-allowlist)\n"
      else begin
        incr failures;
        Printf.printf
          "fixture stale.allowlist: FAILED — stale set [%s] (expected the \
           never/* entries, and only those)\n"
          (String.concat "; "
             (List.map (fun e -> e.a_rule ^ " " ^ e.a_suffix) stale))
      end
    end
  end;
  if !failures > 0 then begin
    Printf.printf "%d fixture(s) failed\n" !failures;
    exit 1
  end

(* --- entry point ------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: lint.exe [--allowlist FILE] [--check-stale-allowlist] [--json]\n\
    \                [--summary FILE] PATH...\n\
    \       lint.exe --catalog PATH...\n\
    \       lint.exe --catalog-md PATH...\n\
    \       lint.exe --check-catalog [--baseline FILE]... --doc FILE PATH...\n\
    \       lint.exe --self-test DIR";
  exit 2

type opts = {
  mutable allowlist : allow_entry list;
  mutable allowlist_file : string;
  mutable check_stale : bool;
  mutable json : bool;
  mutable summary : string option;
  mutable catalog : bool;
  mutable catalog_md : bool;
  mutable check_cat : bool;
  mutable baselines : string list;
  mutable doc : string option;
  mutable paths : string list;
}

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--self-test"; dir ] -> self_test dir
  | _ ->
      let o =
        {
          allowlist = [];
          allowlist_file = "";
          check_stale = false;
          json = false;
          summary = None;
          catalog = false;
          catalog_md = false;
          check_cat = false;
          baselines = [];
          doc = None;
          paths = [];
        }
      in
      let rec parse = function
        | "--allowlist" :: file :: rest ->
            o.allowlist <- load_allowlist file;
            o.allowlist_file <- file;
            parse rest
        | "--summary" :: file :: rest ->
            o.summary <- Some file;
            parse rest
        | "--baseline" :: file :: rest ->
            o.baselines <- o.baselines @ [ file ];
            parse rest
        | "--doc" :: file :: rest ->
            o.doc <- Some file;
            parse rest
        | "--check-stale-allowlist" :: rest ->
            o.check_stale <- true;
            parse rest
        | "--json" :: rest ->
            o.json <- true;
            parse rest
        | "--catalog" :: rest ->
            o.catalog <- true;
            parse rest
        | "--catalog-md" :: rest ->
            o.catalog_md <- true;
            parse rest
        | "--check-catalog" :: rest ->
            o.check_cat <- true;
            parse rest
        | ("--allowlist" | "--summary" | "--baseline" | "--doc" | "--self-test"
          | "--help" | "-h")
          :: _ ->
            usage ()
        | p :: rest ->
            o.paths <- o.paths @ [ p ];
            parse rest
        | [] -> ()
      in
      parse args;
      if o.paths = [] then usage ();
      let program = analyze_paths o.paths in
      if o.catalog then print_string (A.catalog_json (A.catalog program))
      else if o.catalog_md then print_string (A.catalog_md (A.catalog program))
      else if o.check_cat then check_catalog program o.baselines o.doc
      else begin
        (match o.summary with
        | Some file ->
            let oc = open_out file in
            output_string oc (A.summary_json program);
            close_out oc
        | None -> ());
        let live, stale = apply_allowlist o.allowlist program.A.p_violations in
        let live =
          if o.check_stale then
            live
            @ List.map
                (fun e ->
                  {
                    A.rule = "stale-allowlist";
                    file = o.allowlist_file;
                    line = e.a_line;
                    message =
                      Printf.sprintf
                        "entry \"%s %s\" suppresses zero violations; every \
                         allowlist entry must justify a live hole"
                        e.a_rule e.a_suffix;
                  })
                stale
          else live
        in
        if o.json then print_json live
        else begin
          List.iter print_text live;
          if live = [] then
            Printf.printf
              "lint: %d file(s) clean (%d defs, %d metric registrations, %d \
               spans)\n"
              (List.length program.A.p_files)
              (List.length
                 (List.filter (fun d -> not d.A.anon) program.A.p_defs))
              (List.length (A.catalog program).A.cat_metrics)
              (List.length (A.catalog program).A.cat_spans)
          else
            Printf.printf "lint: %d violation(s) in %d file(s)\n"
              (List.length live)
              (List.length
                 (List.sort_uniq String.compare
                    (List.map (fun (v : A.violation) -> v.A.file) live)))
        end;
        if live <> [] then exit 1
      end
