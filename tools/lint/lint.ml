(* Project lint: a static-analysis pass over lib/**/*.ml enforcing the
   layering invariants the simulation depends on but the type system
   cannot see.  Parses each file with compiler-libs and walks the AST;
   no type information is needed, so fixtures and generated code lint
   without compiling.

   Rules (each with a negative fixture under fixtures/):

     disk-io      every disk access flows through Lfs_disk.Io; calling
                  Disk.read/Disk.write anywhere else bypasses request
                  accounting and the Figure 1/2 audits under-count
     nondet       all time comes from the simulated Clock and all
                  randomness from Lfs_util.Rng; Unix.*, Sys.time and the
                  ambient Random.* break run-to-run determinism
     stdout       lib/ code never prints to stdout; observability goes
                  through Lfs_obs (metrics, trace bus) so benchmark
                  output stays machine-readable
     lru-to-list  Lru.to_list materializes the whole cache as a list and
                  is test/debug-only; hot paths use iter_lru/fold_lru/
                  sweep_lru
     metric-name  metric names registered via Lfs_obs.Metrics must be
                  dotted, lowercase, and under a known component prefix
                  (disk.|io.|cache.|lfs.|ffs.)
     metric-dup   a metric name is registered at exactly one source
                  location; two sites sharing a literal means two
                  components fighting over one instrument
     span-name    span names opened via Lfs_obs.Bus (with_span or
                  span_begin) must be snake_case — a single lowercase
                  word chain, no dots (spans are per-layer, not
                  registry-scoped)
     span-dup     a span name literal appears at exactly one source
                  location; shared names make the aggregate span tree
                  conflate two different code paths (helpers like
                  Profile.with_op own the literal instead)
     workload-disk  workload and bench code never names the Disk module:
                  harnesses go through Io (and Faulty for fault
                  injection), so every access is scheduled, counted, and
                  interceptable by a fault scenario
     workload-clock  workload and bench code never advances the Clock
                  directly (advance_us / advance_to_us): under the
                  concurrent engine, time moves only through the event
                  loop and the Io layer, so a callback that pushes the
                  clock forward would skew every other client's latency
                  (engine.ml, which owns the loop, is allowlisted)

   Scope notes: bench/ is exempt from the stdout rule (its job is to
   print reports) and from metric registration collection (it reads
   counters back through the same get-or-create API the library used to
   create them, which is not a duplicate registration).

   Allowlist: a text file of "<rule> <path-suffix>" lines; a violation is
   suppressed when its rule matches and its file path ends with the
   suffix.  See tools/lint/allowlist.

   Usage:
     lint.exe [--allowlist FILE] PATH...   lint every .ml under PATHs
     lint.exe --self-test DIR              check fixture expectations:
                                           each fixture's first line is
                                           "(* expect: <rule> *)" (or the
                                           file is named good*.ml and
                                           must lint clean)

   Exit status: 0 clean, 1 violations (or fixture expectation failures),
   2 usage / IO errors. *)

type violation = { rule : string; file : string; line : int; message : string }

let violations : violation list ref = ref []

(* metric name -> registration sites (file, line), newest first *)
let metric_sites : (string, (string * int) list) Hashtbl.t = Hashtbl.create 64

(* span name -> sites opening it, newest first *)
let span_sites : (string, (string * int) list) Hashtbl.t = Hashtbl.create 64

let report ~rule ~file ~line message =
  violations := { rule; file; line; message } :: !violations

let line_of_loc (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let flatten lid =
  match Longident.flatten lid with
  | parts -> String.concat "." parts
  | exception _ -> ""

(* --- rule predicates ------------------------------------------------ *)

(* Which tree a file lives in, by path component (works for the real
   lib/workload and bench trees and for fixtures/workload etc.). *)
let path_components file = String.split_on_char '/' file
let in_dir dir file = List.mem dir (path_components file)
let workload_ctx file = in_dir "workload" file || in_dir "bench" file
let bench_ctx file = in_dir "bench" file

(* Any value reached through a [Disk] module: Disk.create, Disk.stats,
   Lfs_disk.Disk.snapshot, ... *)
let is_disk_value s =
  match List.rev (String.split_on_char '.' s) with
  | _ :: "Disk" :: _ -> true
  | _ -> false

let is_clock_advance s =
  let tails = [ "Clock.advance_us"; "Clock.advance_to_us" ] in
  List.exists
    (fun tail -> s = tail || String.ends_with ~suffix:("." ^ tail) s)
    tails

let is_disk_io s =
  s = "Disk.read" || s = "Disk.write"
  || String.ends_with ~suffix:".Disk.read" s
  || String.ends_with ~suffix:".Disk.write" s

let is_nondet s =
  String.starts_with ~prefix:"Unix." s
  || s = "Sys.time"
  || s = "Stdlib.Sys.time"
  || (String.starts_with ~prefix:"Random." s
     && not (String.starts_with ~prefix:"Random.State." s))
  || String.starts_with ~prefix:"Stdlib.Random." s

let stdout_idents =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes"; "Printf.printf";
    "Format.printf"; "Format.print_string"; "Format.print_newline";
    "Format.print_flush"; "Format.std_formatter";
  ]

let is_stdout s =
  List.mem s stdout_idents
  || List.exists (fun i -> s = "Stdlib." ^ i) stdout_idents

let is_lru_to_list s =
  s = "Lru.to_list" || String.ends_with ~suffix:".Lru.to_list" s

let metric_registrars = [ "Metrics.counter"; "Metrics.gauge"; "Metrics.histogram" ]

let is_metric_registrar s =
  List.exists
    (fun r -> s = r || String.ends_with ~suffix:("." ^ r) s)
    metric_registrars

let span_registrars = [ "Bus.with_span"; "Bus.span_begin" ]

let is_span_registrar s =
  List.exists
    (fun r -> s = r || String.ends_with ~suffix:("." ^ r) s)
    span_registrars

let span_name_ok name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
       name

let metric_prefixes = [ "disk"; "io"; "cache"; "lfs"; "ffs"; "engine" ]

let metric_name_ok name =
  match String.split_on_char '.' name with
  | first :: (_ :: _ as rest) ->
      List.mem first metric_prefixes
      && List.for_all
           (fun seg ->
             seg <> ""
             && String.for_all
                  (fun c ->
                    (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
                  seg)
           rest
  | _ -> false

(* --- AST walk ------------------------------------------------------- *)

let check_ident ~file s loc =
  let line = line_of_loc loc in
  if workload_ctx file && is_disk_value s then
    report ~rule:"workload-disk" ~file ~line
      (Printf.sprintf
         "%s: workloads and benchmarks must go through Io (or Faulty), \
          never the raw Disk"
         s)
  else if workload_ctx file && is_clock_advance s then
    report ~rule:"workload-clock" ~file ~line
      (Printf.sprintf
         "%s: time moves only through the engine's event loop and the Io \
          layer, never by direct Clock advancement"
         s)
  else if is_disk_io s then
    report ~rule:"disk-io" ~file ~line
      (Printf.sprintf
         "%s: raw disk access outside Lfs_disk.Io bypasses request \
          accounting"
         s)
  else if is_nondet s then
    report ~rule:"nondet" ~file ~line
      (Printf.sprintf
         "%s: ambient nondeterminism; use the simulated Clock or \
          Lfs_util.Rng"
         s)
  else if is_stdout s && not (bench_ctx file) then
    report ~rule:"stdout" ~file ~line
      (Printf.sprintf "%s: lib/ code must not print to stdout; use Lfs_obs" s)
  else if is_lru_to_list s then
    report ~rule:"lru-to-list" ~file ~line
      (Printf.sprintf
         "%s: test/debug-only; hot paths use iter_lru/fold_lru/sweep_lru" s)

let check_metric_registration ~file name loc =
  let line = line_of_loc loc in
  if not (metric_name_ok name) then
    report ~rule:"metric-name" ~file ~line
      (Printf.sprintf
         "metric %S does not match <%s>.<lowercase_dotted> convention" name
         (String.concat "|" metric_prefixes));
  let sites =
    match Hashtbl.find_opt metric_sites name with Some l -> l | None -> []
  in
  Hashtbl.replace metric_sites name ((file, line) :: sites)

let check_span_registration ~file name loc =
  let line = line_of_loc loc in
  if not (span_name_ok name) then
    report ~rule:"span-name" ~file ~line
      (Printf.sprintf "span %S is not snake_case ([a-z][a-z0-9_]*)" name);
  let sites =
    match Hashtbl.find_opt span_sites name with Some l -> l | None -> []
  in
  Hashtbl.replace span_sites name ((file, line) :: sites)

let iterator ~file =
  let open Ast_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident ~file (flatten txt) loc
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when is_metric_registrar (flatten txt) && not (bench_ctx file) -> (
        (* The metric name is the first string-literal argument; names
           built at runtime cannot be checked statically. *)
        let literal =
          List.find_map
            (fun (_, (arg : Parsetree.expression)) ->
              match arg.pexp_desc with
              | Pexp_constant (Pconst_string (s, _, _)) ->
                  Some (s, arg.pexp_loc)
              | _ -> None)
            args
        in
        match literal with
        | Some (name, loc) -> check_metric_registration ~file name loc
        | None -> ())
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when is_span_registrar (flatten txt) -> (
        (* Likewise, the span name is the first string literal. *)
        let literal =
          List.find_map
            (fun (_, (arg : Parsetree.expression)) ->
              match arg.pexp_desc with
              | Pexp_constant (Pconst_string (s, _, _)) ->
                  Some (s, arg.pexp_loc)
              | _ -> None)
            args
        in
        match literal with
        | Some (name, loc) -> check_span_registration ~file name loc
        | None -> ())
    | _ -> ());
    default_iterator.expr it e
  in
  { default_iterator with expr }

let lint_file file =
  let ic = open_in_bin file in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | ast ->
      let it = iterator ~file in
      it.Ast_iterator.structure it ast
  | exception exn ->
      report ~rule:"parse" ~file ~line:1
        (Printf.sprintf "cannot parse: %s" (Printexc.to_string exn))

(* Cross-file pass, after every file has been scanned. *)
let finish_metric_dups () =
  Hashtbl.iter
    (fun name sites ->
      match List.rev sites with
      | _first :: (_ :: _ as dups) ->
          List.iter
            (fun (file, line) ->
              report ~rule:"metric-dup" ~file ~line
                (Printf.sprintf "metric %S is already registered elsewhere"
                   name))
            dups
      | _ -> ())
    metric_sites

let finish_span_dups () =
  Hashtbl.iter
    (fun name sites ->
      match List.rev sites with
      | _first :: (_ :: _ as dups) ->
          List.iter
            (fun (file, line) ->
              report ~rule:"span-dup" ~file ~line
                (Printf.sprintf "span %S is already opened elsewhere" name))
            dups
      | _ -> ())
    span_sites

(* --- file discovery and allowlist ----------------------------------- *)

let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun name -> ml_files (Filename.concat path name))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let load_allowlist file =
  let ic = open_in file in
  let rec loop acc =
    match input_line ic with
    | exception End_of_file ->
        close_in_noerr ic;
        List.rev acc
    | line -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match
          String.split_on_char ' ' line
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun s -> s <> "")
        with
        | [ rule; suffix ] -> loop ((rule, suffix) :: acc)
        | [] -> loop acc
        | _ ->
            Printf.eprintf "%s: malformed allowlist line %S\n" file line;
            exit 2)
  in
  loop []

let allowed allowlist v =
  List.exists
    (fun (rule, suffix) -> rule = v.rule && String.ends_with ~suffix v.file)
    allowlist

(* --- self-test over fixtures ----------------------------------------- *)

let expected_rule file =
  let ic = open_in file in
  let first = try input_line ic with End_of_file -> "" in
  close_in_noerr ic;
  let prefix = "(* expect: " and suffix = " *)" in
  if
    String.starts_with ~prefix first
    && String.ends_with ~suffix first
    && String.length first > String.length prefix + String.length suffix
  then
    Some
      (String.sub first (String.length prefix)
         (String.length first - String.length prefix - String.length suffix))
  else None

let self_test dir =
  let failures = ref 0 in
  List.iter
    (fun file ->
      violations := [];
      Hashtbl.reset metric_sites;
      Hashtbl.reset span_sites;
      lint_file file;
      finish_metric_dups ();
      finish_span_dups ();
      let fired = List.map (fun v -> v.rule) !violations in
      let base = Filename.basename file in
      match expected_rule file with
      | Some rule ->
          if List.mem rule fired then Printf.printf "fixture %s: ok (%s)\n" base rule
          else begin
            incr failures;
            Printf.printf "fixture %s: FAILED — expected rule %s, fired [%s]\n"
              base rule
              (String.concat "; " fired)
          end
      | None ->
          if String.starts_with ~prefix:"good" base then
            if fired = [] then Printf.printf "fixture %s: ok (clean)\n" base
            else begin
              incr failures;
              Printf.printf "fixture %s: FAILED — expected clean, fired [%s]\n"
                base
                (String.concat "; " fired)
            end
          else begin
            incr failures;
            Printf.printf
              "fixture %s: FAILED — missing \"(* expect: <rule> *)\" header\n"
              base
          end)
    (ml_files dir);
  if !failures > 0 then begin
    Printf.printf "%d fixture(s) failed\n" !failures;
    exit 1
  end

(* --- entry point ------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: lint.exe [--allowlist FILE] PATH...\n\
    \       lint.exe --self-test DIR";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--self-test"; dir ] -> self_test dir
  | _ ->
      let rec parse allowlist paths = function
        | "--allowlist" :: file :: rest -> parse (load_allowlist file) paths rest
        | "--allowlist" :: [] -> usage ()
        | ("--self-test" | "--help" | "-h") :: _ -> usage ()
        | p :: rest -> parse allowlist (p :: paths) rest
        | [] -> (allowlist, List.rev paths)
      in
      let allowlist, paths = parse [] [] args in
      if paths = [] then usage ();
      let files = List.concat_map ml_files paths in
      if files = [] then begin
        Printf.eprintf "lint: no .ml files under %s\n" (String.concat " " paths);
        exit 2
      end;
      List.iter lint_file files;
      finish_metric_dups ();
      finish_span_dups ();
      let live =
        List.filter (fun v -> not (allowed allowlist v)) (List.rev !violations)
      in
      List.iter
        (fun v ->
          Printf.printf "%s:%d: [%s] %s\n" v.file v.line v.rule v.message)
        live;
      if live <> [] then begin
        Printf.printf "lint: %d violation(s) in %d file(s)\n" (List.length live)
          (List.length
             (List.sort_uniq String.compare (List.map (fun v -> v.file) live)));
        exit 1
      end
      else
        Printf.printf
          "lint: %d file(s) clean (%d metric registrations, %d spans)\n"
          (List.length files)
          (Hashtbl.length metric_sites)
          (Hashtbl.length span_sites)
