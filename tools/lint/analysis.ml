(* Whole-program effect analysis for the project lint.

   The per-file AST walk (PR 3) enforces the layering invariants only
   syntactically: a helper that reaches Disk/Clock/Random through one
   level of indirection is invisible.  This module parses every given
   source into one unit, builds an approximate module-qualified call
   graph over all top-level value bindings, and computes transitive
   effect summaries per function via a fixpoint, so the confinement
   rules hold interprocedurally.

   Effects tracked (bitmask):
     DiskIO         a raw Disk.read/Disk.write is reachable
     ClockAdvance   Clock.advance_us/advance_to_us is reachable
     AmbientNondet  Unix.*, Sys.time or the ambient Random.* is reachable
     Stdout         a direct stdout print is reachable
     SpanOpen       a raw Bus.span_begin (unbalanced span) is reachable
     Raises         raise/failwith/invalid_arg/assert is reachable

   Approximations (deliberate, conservative where it matters):
     - Calls are resolved by matching a (file-local-alias-expanded)
       identifier path against the suffix of every known qualified
       definition; multiple matches contribute the union of their
       summaries.  Unqualified identifiers resolve only inside their
       own module (locals and stdlib functions carry no effect).
     - `include M` re-registers M's bindings under the including
       module; `module X = A.B` is expanded through a per-file alias
       table; functor applications and first-class modules unpacked in
       patterns ((module F) — virtual dispatch) are opaque (no effect
       assumed — every effect primitive in this codebase is called by
       name, and the packed implementations are analyzed on their own).
     - A qualified call into a module that is neither defined in the
       unit nor on the known-benign list (stdlib, vendored externals,
       the project's own layer names) is UNKNOWN and contributes every
       effect, so dead reckoning fails closed.
     - Mutual recursion is handled by iterating the (finite, monotone)
       summary lattice to its least fixed point.

   Absorption: the sanctioned layers stop propagation — an effect that
   is legal *inside* a module is not inherited by its callers.  Io
   absorbs DiskIO and ClockAdvance (every access through Io is
   accounted and scheduled), Clock/Rng absorb AmbientNondet (they are
   the seeded wrappers), the engine absorbs ClockAdvance (it owns the
   event loop), and Bus absorbs SpanOpen (with_span is the safe
   wrapper).  The syntactic rules still fire at the raw sites inside
   those modules, where the per-file allowlist keeps them justified.

   On top of the summaries, the transitive rule family:
     transitive-disk-io   code outside Io reaches a raw disk access
                          through calls (the file itself never names
                          Disk, so the syntactic rule is blind)
     transitive-nondet    code outside Clock/Rng reaches ambient
                          nondeterminism through calls
     transitive-clock     workload/bench/scenario code reaches direct
                          clock advancement through calls
   plus span exception-safety:
     span-unsafe          a raw Bus.span_begin not protected by
                          Fun.protect ~finally:(... span_end ...) — a
                          Faulty.Crash unwinding the stack would leave
                          the profiler's span tree corrupted; use
                          Bus.with_span (exception-safe) instead.
   The syntactic rules from PR 3-6 (disk-io, nondet, stdout,
   lru-to-list, workload-disk, workload-clock, metric and span naming)
   plus scenario-entry (test and lib code must reach Crashpoint
   sweeps / Faulty.attach through the Lfs_scenario DSL, whose compiler
   is the allowlisted sole caller) run over the same parse, with
   identifier paths alias-expanded, so `module D = Disk` no longer
   hides a raw access.
   The analysis also collects the observability catalog: every metric
   name, span name (including the op_* literals owned by
   Profile.op_name) and bus event constructor, with its source site. *)

(* ---------------- effects ---------------- *)

let eff_disk_io = 1
let eff_clock = 2
let eff_nondet = 4
let eff_stdout = 8
let eff_span = 16
let eff_raises = 32
let eff_all = 63

let effect_labels =
  [
    (eff_disk_io, "DiskIO");
    (eff_clock, "ClockAdvance");
    (eff_nondet, "AmbientNondet");
    (eff_stdout, "Stdout");
    (eff_span, "SpanOpen");
    (eff_raises, "Raises");
  ]

let effect_names mask =
  List.filter_map
    (fun (bit, name) -> if mask land bit <> 0 then Some name else None)
    effect_labels

type violation = { rule : string; file : string; line : int; message : string }

(* ---------------- path contexts ---------------- *)

let path_components file = String.split_on_char '/' file
let in_dir dir file = List.mem dir (path_components file)
let bench_ctx file = in_dir "bench" file
let bin_ctx file = in_dir "bin" file
let test_ctx file = in_dir "test" file
let workload_ctx file = in_dir "workload" file || bench_ctx file

(* The scenario DSL compiler: held to the workload tree's disk/clock
   discipline (it drives the same machinery), but *not* given its
   fault-entry exemption — scenario.ml's own raw entry points are
   carried by the allowlist instead, so the hole stays visible. *)
let scenario_ctx file = in_dir "scenario" file

(* Everything that is not a harness tree is held to library standards;
   fixtures without a bench/bin/test component deliberately land here. *)
let lib_ctx file = not (bench_ctx file || bin_ctx file || test_ctx file)

(* ---------------- rule predicates ---------------- *)

let is_disk_value s =
  match List.rev (String.split_on_char '.' s) with
  | _ :: "Disk" :: _ -> true
  | _ -> false

let is_clock_advance s =
  let tails = [ "Clock.advance_us"; "Clock.advance_to_us" ] in
  List.exists
    (fun tail -> s = tail || String.ends_with ~suffix:("." ^ tail) s)
    tails

let is_disk_io s =
  s = "Disk.read" || s = "Disk.write"
  || String.ends_with ~suffix:".Disk.read" s
  || String.ends_with ~suffix:".Disk.write" s

let is_nondet s =
  String.starts_with ~prefix:"Unix." s
  || s = "Sys.time"
  || s = "Stdlib.Sys.time"
  || (String.starts_with ~prefix:"Random." s
     && not (String.starts_with ~prefix:"Random.State." s))
  || String.starts_with ~prefix:"Stdlib.Random." s

let stdout_idents =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes"; "Printf.printf";
    "Format.printf"; "Format.print_string"; "Format.print_newline";
    "Format.print_flush"; "Format.std_formatter";
  ]

let is_stdout s =
  List.mem s stdout_idents
  || List.exists (fun i -> s = "Stdlib." ^ i) stdout_idents

let is_lru_to_list s =
  s = "Lru.to_list" || String.ends_with ~suffix:".Lru.to_list" s

(* Raw fault/sweep entry points that test and lib code must reach
   through Lfs_scenario (Scenario.run / Scenario.with_faults), so every
   fault run is seed-managed and replayable. *)
let scenario_entries =
  [
    "Crashpoint.sweep"; "Crashpoint.read_fault_run";
    "Crashpoint.bad_sector_run"; "Faulty.attach";
  ]

let is_scenario_entry s =
  List.exists
    (fun t -> s = t || String.ends_with ~suffix:("." ^ t) s)
    scenario_entries

let is_raise s =
  List.mem s [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let metric_registrars =
  [ "Metrics.counter"; "Metrics.gauge"; "Metrics.histogram" ]

let is_metric_registrar s =
  List.exists
    (fun r -> s = r || String.ends_with ~suffix:("." ^ r) s)
    metric_registrars

(* Metrics.member_counter registers "disk.<member>.<literal>" — a whole
   family, one per volume member.  The catalog records the family once
   with the index generalised to the "<i>" placeholder. *)
let is_member_counter_registrar s =
  s = "Metrics.member_counter"
  || String.ends_with ~suffix:".Metrics.member_counter" s

let span_registrars = [ "Bus.with_span"; "Bus.span_begin" ]

let is_span_registrar s =
  List.exists
    (fun r -> s = r || String.ends_with ~suffix:("." ^ r) s)
    span_registrars

let is_span_begin s =
  s = "Bus.span_begin" || String.ends_with ~suffix:".Bus.span_begin" s

let is_span_end s = s = "span_end" || String.ends_with ~suffix:".span_end" s

let is_fun_protect s =
  s = "Fun.protect" || s = "Stdlib.Fun.protect"
  || String.ends_with ~suffix:".Fun.protect" s

let span_name_ok name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
       name

let metric_prefixes = [ "disk"; "io"; "cache"; "lfs"; "ffs"; "engine" ]

let metric_name_ok name =
  match String.split_on_char '.' name with
  | first :: (_ :: _ as rest) ->
      List.mem first metric_prefixes
      && List.for_all
           (fun seg ->
             (* "<i>" is the per-member label placeholder (disk.<i>.seeks):
                one catalog entry stands for the whole member family. *)
             seg = "<i>"
             || seg <> ""
                && String.for_all
                     (fun c ->
                       (c >= 'a' && c <= 'z')
                       || (c >= '0' && c <= '9')
                       || c = '_')
                     seg)
           rest
  | _ -> false

(* Effects carried by a single identifier occurrence (the primitives). *)
let eff_of_ident s =
  (if is_disk_io s then eff_disk_io else 0)
  lor (if is_clock_advance s then eff_clock else 0)
  lor (if is_nondet s then eff_nondet else 0)
  lor (if is_stdout s then eff_stdout else 0)
  lor (if is_span_begin s then eff_span else 0)
  lor if is_raise s then eff_raises else 0

(* ---------------- absorption ---------------- *)

(* path-suffix -> effects that are legal inside that module and must
   not be inherited by callers.  Mirrors the allowlist's holes. *)
let absorbers =
  [
    ("disk/io.ml", eff_disk_io lor eff_clock);
    ("disk/disk.ml", eff_disk_io);
    ("disk/volume.ml", eff_disk_io);
    ("disk/clock.ml", eff_nondet);
    ("util/rng.ml", eff_nondet);
    ("workload/engine.ml", eff_clock);
    ("obs/bus.ml", eff_span);
  ]

let absorb file =
  List.fold_left
    (fun acc (suffix, mask) ->
      if String.ends_with ~suffix file then acc lor mask else acc)
    0 absorbers

(* ---------------- unresolved-module classification ---------------- *)

(* Modules assumed effect-free when a qualified call does not resolve
   inside the unit: the stdlib (its effectful entry points are caught
   by the intrinsic predicates above, e.g. Printf.printf, Random.int,
   Sys.time), the vendored externals, and the project's own layer
   names (so a fixture linted in isolation can call Io/Clock/Rng
   without the file set containing them).  Anything else is unknown
   and fails closed to every effect. *)
let benign_modules =
  [
    (* stdlib *)
    "Stdlib"; "List"; "ListLabels"; "Array"; "ArrayLabels"; "Bytes";
    "BytesLabels"; "String"; "StringLabels"; "Char"; "Uchar"; "Int";
    "Int32"; "Int64"; "Nativeint"; "Float"; "Bool"; "Option"; "Result";
    "Either"; "Seq"; "Map"; "Set"; "Hashtbl"; "Queue"; "Stack"; "Buffer";
    "Printf"; "Format"; "Scanf"; "Lexing"; "Parsing"; "Filename"; "Sys";
    "Fun"; "Lazy"; "Gc"; "Marshal"; "Obj"; "Printexc"; "Callback";
    "Domain"; "Atomic"; "Mutex"; "Condition"; "Semaphore"; "Weak";
    "Ephemeron"; "Random"; "Unix"; "Arg"; "Digest"; "Complex"; "Bigarray";
    "In_channel"; "Out_channel"; "Exn"; "StdLabels"; "MoreLabels";
    (* external libraries the repo links against, including the
       submodules their conventional `open` brings into scope
       (Bechamel: Test/Staged/Time/Benchmark/Analyze/Measure; Cmdliner:
       Cmd/Term/Manpage) *)
    "Fmt"; "Logs"; "Cmdliner"; "Bechamel"; "Alcotest"; "QCheck"; "QCheck2";
    "QCheck_alcotest"; "Toolkit"; "Staged"; "Time"; "Benchmark"; "Analyze";
    "Measure"; "Test"; "Cmd"; "Term"; "Manpage";
    (* project layers (fallback for isolated fixtures; in a full run
       these resolve from the unit itself) *)
    "Io"; "Disk"; "Clock"; "Faulty"; "Sched"; "Geometry"; "Cpu_model";
    "Bus"; "Event"; "Metrics"; "Profile"; "Json"; "Benchdiff"; "Rng";
    "Lru"; "Table"; "Zipf"; "Codec"; "Crc32"; "Bitset"; "Errors"; "Path";
    "Fs_intf"; "Dir_block";
  ]

let benign_head head =
  List.mem head benign_modules || String.starts_with ~prefix:"Lfs_" head

(* ---------------- program representation ---------------- *)

type def = {
  qname : string list; (* full module path + value name *)
  dotted : string;
  modpath : string list;
  file : string;
  line : int;
  anon : bool; (* module-init code: cannot be called *)
  mutable occs : (string list * int) list; (* body idents, alias-expanded *)
  mutable direct : int; (* effects from idents in the body *)
  mutable callees : def list;
  mutable unknowns : string list; (* unresolved foreign module heads *)
  mutable expose : int; (* what callers inherit (post-absorption) *)
  mutable from_calls : int; (* union of callee exposures *)
  mutable wits : (int * string) list; (* effect bit -> witness callee *)
}

type file_info = {
  fi_path : string;
  mutable aliases : (string * string list) list; (* module X = A.B *)
  mutable opaque : string list; (* module X = F (Y): no effect assumed *)
  mutable includes : (string list * string list) list; (* at, target *)
}

type site = { s_name : string; s_file : string; s_line : int }

type program = {
  p_defs : def list;
  p_files : file_info list;
  p_metrics : site list; (* registration order *)
  p_spans : site list;
  p_events : site list;
  mutable p_violations : violation list;
}

(* ---------------- parsing and collection ---------------- *)

let line_of_loc (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let flatten lid =
  match Longident.flatten lid with parts -> parts | exception _ -> []

(* Module path of a source file: lib/<d>/<m>.ml lives in the wrapped
   library Lfs_<d> as module <M>; anything else is a bare module. *)
let root_path file =
  let base =
    String.capitalize_ascii (Filename.remove_extension (Filename.basename file))
  in
  let rec find = function
    | "lib" :: libdir :: _ when libdir <> "" ->
        Some (String.capitalize_ascii ("lfs_" ^ libdir))
    | _ :: tl -> find tl
    | [] -> None
  in
  match find (path_components file) with
  | Some lib -> [ lib; base ]
  | None -> [ base ]

let rec pattern_vars (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (p, { txt; _ }) -> txt :: pattern_vars p
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pattern_vars ps
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) ->
      pattern_vars p
  | Ppat_record (fields, _) ->
      List.concat_map (fun (_, p) -> pattern_vars p) fields
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_exception p | Ppat_open (_, p)
    ->
      pattern_vars p
  | Ppat_or (a, b) -> pattern_vars a @ pattern_vars b
  | _ -> []

exception Found_span_end

let contains_span_end expr =
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_ident { txt; _ }
            when is_span_end (String.concat "." (flatten txt)) ->
              raise Found_span_end
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  match it.expr it expr with () -> false | exception Found_span_end -> true

type collector = {
  mutable c_defs : def list; (* reverse order *)
  mutable c_extra : (string list * def) list; (* extra names -> shared def *)
  mutable c_metrics : site list; (* reverse order *)
  mutable c_spans : site list;
  mutable c_events : site list;
  mutable c_viol : violation list;
  mutable c_files : file_info list;
}

let first_string_literal args =
  List.find_map
    (fun (_, (arg : Parsetree.expression)) ->
      match arg.pexp_desc with
      | Pexp_constant (Pconst_string (s, _, _)) -> Some (s, arg.pexp_loc)
      | _ -> None)
    args

let unwrap_module_expr (me : Parsetree.module_expr) =
  let rec go (me : Parsetree.module_expr) =
    match me.pmod_desc with Pmod_constraint (m, _) -> go m | d -> d
  in
  go me

(* Walk one parsed file, creating defs and recording aliases, includes,
   metric/span registrations, event constructors and span-unsafe
   violations.  Mutable stacks thread the context through Ast_iterator. *)
let collect_file col file (ast : Parsetree.structure) =
  let fi = { fi_path = file; aliases = []; opaque = []; includes = [] } in
  col.c_files <- fi :: col.c_files;
  let modpath = ref (root_path file) in
  let toplevel =
    {
      qname = !modpath @ [ "_toplevel_" ];
      dotted = String.concat "." (!modpath @ [ "_toplevel_" ]);
      modpath = !modpath;
      file;
      line = 1;
      anon = true;
      occs = [];
      direct = 0;
      callees = [];
      unknowns = [];
      expose = 0;
      from_calls = 0;
      wits = [];
    }
  in
  let sink = ref toplevel in
  let protected = ref false in
  let op_names = ref false in
  let new_def ?(anon = false) name line =
    let qname = !modpath @ [ name ] in
    let d =
      {
        qname;
        dotted = String.concat "." qname;
        modpath = !modpath;
        file;
        line;
        anon;
        occs = [];
        direct = 0;
        callees = [];
        unknowns = [];
        expose = 0;
        from_calls = 0;
        wits = [];
      }
    in
    col.c_defs <- d :: col.c_defs;
    d
  in
  let record_module_expr name me =
    match unwrap_module_expr me with
    | Parsetree.Pmod_ident { txt; _ } ->
        fi.aliases <- (name, flatten txt) :: fi.aliases
    | Pmod_apply _ -> fi.opaque <- name :: fi.opaque
    | _ -> ()
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun iter (e : Parsetree.expression) ->
          match e.pexp_desc with
          | Pexp_ident { txt; loc } ->
              let path = flatten txt in
              if path <> [] then
                !sink.occs <- (path, line_of_loc loc) :: !sink.occs
          | Pexp_constant (Pconst_string (s, loc, _))
            when !op_names && span_name_ok s ->
              (* Profile.op_name owns the op_* span literals: surface
                 them as span sites so the catalog and the name/dup
                 rules cover them. *)
              col.c_spans <-
                { s_name = s; s_file = file; s_line = line_of_loc loc }
                :: col.c_spans
          | Pexp_letmodule ({ txt = Some name; _ }, me, _) ->
              record_module_expr name me;
              default_iterator.expr iter e
          | Pexp_apply
              (({ pexp_desc = Pexp_ident { txt; _ }; _ } as f), args) ->
              let s = String.concat "." (flatten txt) in
              if is_metric_registrar s && lib_ctx file then (
                match first_string_literal args with
                | Some (name, loc) ->
                    col.c_metrics <-
                      { s_name = name; s_file = file; s_line = line_of_loc loc }
                      :: col.c_metrics
                | None -> ());
              if is_member_counter_registrar s && lib_ctx file then (
                match first_string_literal args with
                | Some (name, loc) ->
                    col.c_metrics <-
                      {
                        s_name = "disk.<i>." ^ name;
                        s_file = file;
                        s_line = line_of_loc loc;
                      }
                      :: col.c_metrics
                | None -> ());
              if is_span_registrar s && lib_ctx file then (
                match first_string_literal args with
                | Some (name, loc) ->
                    col.c_spans <-
                      { s_name = name; s_file = file; s_line = line_of_loc loc }
                      :: col.c_spans
                | None -> ());
              if is_span_begin s && (not !protected) && lib_ctx file then
                col.c_viol <-
                  {
                    rule = "span-unsafe";
                    file;
                    line = line_of_loc e.pexp_loc;
                    message =
                      Printf.sprintf
                        "%s: span not closed on the raise path; wrap in \
                         Bus.with_span (or Fun.protect whose ~finally runs \
                         span_end) so crash injection cannot corrupt the \
                         span tree"
                        s;
                  }
                  :: col.c_viol;
              if is_fun_protect s then begin
                (* Children under the protected thunk see protected=true
                   iff the ~finally argument closes a span. *)
                iter.expr iter f;
                let finally =
                  List.find_map
                    (fun (lbl, (a : Parsetree.expression)) ->
                      match lbl with
                      | Asttypes.Labelled "finally" -> Some a
                      | _ -> None)
                    args
                in
                let closes =
                  match finally with
                  | Some a -> contains_span_end a
                  | None -> false
                in
                List.iter
                  (fun (lbl, (a : Parsetree.expression)) ->
                    match lbl with
                    | Asttypes.Labelled "finally" -> iter.expr iter a
                    | _ ->
                        let saved = !protected in
                        protected := saved || closes;
                        iter.expr iter a;
                        protected := saved)
                  args
              end
              else default_iterator.expr iter e
          | _ -> default_iterator.expr iter e);
      structure_item =
        (fun iter (si : Parsetree.structure_item) ->
          match si.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun (vb : Parsetree.value_binding) ->
                  let line = line_of_loc vb.pvb_loc in
                  let names = pattern_vars vb.pvb_pat in
                  let d =
                    match names with
                    | [] -> new_def ~anon:true (Printf.sprintf "_init_%d" line) line
                    | n :: _ -> new_def n line
                  in
                  (* A tuple pattern shares one body: the extra bound
                     names resolve to the same def in the index. *)
                  List.iter
                    (fun n -> col.c_extra <- (!modpath @ [ n ], d) :: col.c_extra)
                    (match names with [] -> [] | _ :: tl -> tl);
                  let saved_sink = !sink in
                  sink := d;
                  if
                    String.ends_with ~suffix:"obs/profile.ml" file
                    && names = [ "op_name" ]
                  then op_names := true;
                  iter.expr iter vb.pvb_expr;
                  op_names := false;
                  sink := saved_sink)
                vbs
          | Pstr_include incl ->
              (match unwrap_module_expr incl.pincl_mod with
              | Pmod_ident { txt; _ } ->
                  fi.includes <- (!modpath, flatten txt) :: fi.includes
              | _ -> ());
              default_iterator.structure_item iter si
          | Pstr_open od ->
              (match unwrap_module_expr od.popen_expr with
              | Pmod_ident _ -> () (* opens are not used for resolution *)
              | _ -> ());
              default_iterator.structure_item iter si
          | Pstr_type (_, decls)
            when String.ends_with ~suffix:"obs/event.ml" file ->
              List.iter
                (fun (d : Parsetree.type_declaration) ->
                  if d.ptype_name.txt = "t" then
                    match d.ptype_kind with
                    | Ptype_variant cds ->
                        List.iter
                          (fun (cd : Parsetree.constructor_declaration) ->
                            col.c_events <-
                              {
                                s_name =
                                  String.lowercase_ascii cd.pcd_name.txt;
                                s_file = file;
                                s_line = line_of_loc cd.pcd_loc;
                              }
                              :: col.c_events)
                          cds
                    | _ -> ())
                decls;
              default_iterator.structure_item iter si
          | _ -> default_iterator.structure_item iter si);
      pat =
        (fun iter (p : Parsetree.pattern) ->
          (match p.ppat_desc with
          | Ppat_unpack { txt = Some name; _ } ->
              (* (module F) in a pattern: virtual dispatch; calls
                 through F are opaque, like a functor parameter. *)
              if not (List.mem name fi.opaque) then
                fi.opaque <- name :: fi.opaque
          | _ -> ());
          default_iterator.pat iter p);
      module_binding =
        (fun iter (mb : Parsetree.module_binding) ->
          let name = match mb.pmb_name.txt with Some n -> n | None -> "_" in
          record_module_expr name mb.pmb_expr;
          let saved = !modpath in
          modpath := saved @ [ name ];
          default_iterator.module_binding iter mb;
          modpath := saved);
    }
  in
  it.structure it ast;
  col.c_defs <- toplevel :: col.c_defs

(* ---------------- resolution ---------------- *)

(* Index: last path component -> (full qualified key, def). Synthetic
   keys added by include expansion point at the original def. *)
type index = (string, (string list * def) list) Hashtbl.t

let index_add (idx : index) key d =
  match List.rev key with
  | [] -> ()
  | last :: _ ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt idx last) in
      if not (List.exists (fun (k, d') -> k = key && d' == d) prev) then
        Hashtbl.replace idx last ((key, d) :: prev)

let rec ends_with_path ~suffix path =
  let lp = List.length path and ls = List.length suffix in
  if ls > lp then false
  else if ls = lp then path = suffix
  else ends_with_path ~suffix (List.tl path)

(* All defs whose qualified key ends with the (expanded) ident path. *)
let lookup (idx : index) path =
  match List.rev path with
  | [] -> []
  | last :: _ -> (
      match Hashtbl.find_opt idx last with
      | None -> []
      | Some cands ->
          List.filter_map
            (fun (key, d) ->
              if ends_with_path ~suffix:path key then Some d else None)
            cands)

let expand_alias fi path =
  match path with
  | head :: tl when tl <> [] -> (
      match List.assoc_opt head fi.aliases with
      | Some target -> target @ tl
      | None -> path)
  | _ -> path

(* include M at path P: register every def reachable through M under P
   as well.  Iterated a few rounds so include-of-include settles. *)
let expand_includes (idx : index) files defs =
  let sublist_positions ~sub l =
    let n = List.length l and m = List.length sub in
    let arr = Array.of_list l in
    let rec at i j = j >= m || (arr.(i + j) = List.nth sub j && at i (j + 1)) in
    let rec go i acc =
      if i + m > n then List.rev acc
      else go (i + 1) (if at i 0 then i :: acc else acc)
    in
    if m = 0 then [] else go 0 []
  in
  let drop n l =
    let rec go n l = if n = 0 then l else go (n - 1) (List.tl l) in
    go n l
  in
  for _round = 1 to 4 do
    List.iter
      (fun fi ->
        List.iter
          (fun (at, target) ->
            let target = expand_alias fi target in
            List.iter
              (fun d ->
                if not d.anon then
                  let m = List.length target in
                  List.iter
                    (fun i ->
                      let rest = drop (i + m) d.qname in
                      (* keep at least the value name *)
                      if rest <> [] then index_add idx (at @ rest) d)
                    (sublist_positions ~sub:target
                       (List.filteri
                          (fun i _ -> i < List.length d.qname - 1)
                          d.qname)))
              defs)
          fi.includes)
      files
  done

(* ---------------- fixpoint ---------------- *)

let fixpoint defs =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun d ->
        let v =
          List.fold_left
            (fun acc c -> acc lor c.expose)
            (d.direct lor if d.unknowns <> [] then eff_all else 0)
            d.callees
        in
        let v = v land lnot (absorb d.file) in
        if v <> d.expose then begin
          d.expose <- v;
          changed := true
        end)
      defs
  done;
  (* Final pass: what each function does including callee work, with a
     witness callee per inherited effect (for diagnostics). *)
  List.iter
    (fun d ->
      let fc = ref (if d.unknowns <> [] then eff_all else 0) in
      if d.unknowns <> [] then
        List.iter
          (fun (bit, _) ->
            if not (List.mem_assoc bit d.wits) then
              d.wits <-
                (bit, Printf.sprintf "<unknown module %s>" (List.hd d.unknowns))
                :: d.wits)
          effect_labels;
      List.iter
        (fun c ->
          List.iter
            (fun (bit, _) ->
              if c.expose land bit <> 0 then begin
                fc := !fc lor bit;
                if not (List.mem_assoc bit d.wits) then
                  d.wits <- (bit, c.dotted) :: d.wits
              end)
            effect_labels)
        d.callees;
      d.from_calls <- !fc)
    defs

(* Witness chain for an inherited effect, e.g.
   "Lfs_cache.Warm.fill -> Lfs_core.Helper.nudge -> Disk.write". *)
let witness_chain defs bit d =
  let by_name = Hashtbl.create 64 in
  List.iter (fun d -> Hashtbl.replace by_name d.dotted d) defs;
  let rec go d acc depth =
    if depth > 12 then List.rev ("..." :: acc)
    else
      match List.assoc_opt bit d.wits with
      | None -> List.rev acc
      | Some w -> (
          match Hashtbl.find_opt by_name w with
          | Some next when next.direct land bit <> 0 ->
              List.rev (w :: acc) (* raw site reached *)
          | Some next -> go next (w :: acc) depth
          | None -> List.rev (w :: acc))
  in
  String.concat " -> " (d.dotted :: go d [] 0)

(* ---------------- rule passes ---------------- *)

let syntactic_checks program =
  let report rule file line message =
    program.p_violations <-
      { rule; file; line; message } :: program.p_violations
  in
  List.iter
    (fun d ->
      let file = d.file in
      List.iter
        (fun (path, line) ->
          let s = String.concat "." path in
          if (workload_ctx file || scenario_ctx file) && is_disk_value s then
            report "workload-disk" file line
              (Printf.sprintf
                 "%s: workloads and benchmarks must go through Io (or \
                  Faulty), never the raw Disk"
                 s)
          else if (workload_ctx file || scenario_ctx file) && is_clock_advance s
          then
            report "workload-clock" file line
              (Printf.sprintf
                 "%s: time moves only through the engine's event loop and \
                  the Io layer, never by direct Clock advancement"
                 s)
          else if
            is_scenario_entry s
            && (test_ctx file || lib_ctx file)
            && not (workload_ctx file)
          then
            report "scenario-entry" file line
              (Printf.sprintf
                 "%s: raw fault/sweep entry point; drive it through \
                  Lfs_scenario (Scenario.run or Scenario.with_faults) so \
                  the run is seed-managed and replayable"
                 s)
          else if is_disk_io s && not (test_ctx file) then
            report "disk-io" file line
              (Printf.sprintf
                 "%s: raw disk access outside Lfs_disk.Io bypasses request \
                  accounting"
                 s)
          else if is_nondet s then
            report "nondet" file line
              (Printf.sprintf
                 "%s: ambient nondeterminism; use the simulated Clock or \
                  Lfs_util.Rng"
                 s)
          else if is_stdout s && lib_ctx file then
            report "stdout" file line
              (Printf.sprintf
                 "%s: lib/ code must not print to stdout; use Lfs_obs" s)
          else if is_lru_to_list s && not (test_ctx file) then
            report "lru-to-list" file line
              (Printf.sprintf
                 "%s: test/debug-only; hot paths use \
                  iter_lru/fold_lru/sweep_lru"
                 s))
        d.occs)
    program.p_defs

let registration_checks program =
  let report rule file line message =
    program.p_violations <-
      { rule; file; line; message } :: program.p_violations
  in
  let seen : (string, string * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if not (metric_name_ok s.s_name) then
        report "metric-name" s.s_file s.s_line
          (Printf.sprintf
             "metric %S does not match <%s>.<lowercase_dotted> convention"
             s.s_name
             (String.concat "|" metric_prefixes));
      match Hashtbl.find_opt seen s.s_name with
      | Some _ ->
          report "metric-dup" s.s_file s.s_line
            (Printf.sprintf "metric %S is already registered elsewhere"
               s.s_name)
      | None -> Hashtbl.replace seen s.s_name (s.s_file, s.s_line))
    program.p_metrics;
  let seen_span : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if not (span_name_ok s.s_name) then
        report "span-name" s.s_file s.s_line
          (Printf.sprintf "span %S is not snake_case ([a-z][a-z0-9_]*)"
             s.s_name);
      if Hashtbl.mem seen_span s.s_name then
        report "span-dup" s.s_file s.s_line
          (Printf.sprintf "span %S is already opened elsewhere" s.s_name)
      else Hashtbl.replace seen_span s.s_name ())
    program.p_spans

let transitive_checks program =
  let report rule d prim bit =
    program.p_violations <-
      {
        rule;
        file = d.file;
        line = d.line;
        message =
          Printf.sprintf "%s: reaches %s through calls: %s"
            (List.nth d.qname (List.length d.qname - 1))
            prim
            (witness_chain program.p_defs bit d);
      }
      :: program.p_violations
  in
  List.iter
    (fun d ->
      (* Inherited-only effects: a direct raw site is the syntactic
         rules' business; the absorber modules own their effects. *)
      let inherited = d.from_calls land lnot d.direct land lnot (absorb d.file) in
      if inherited land eff_disk_io <> 0 && not (test_ctx d.file) then
        report "transitive-disk-io" d "raw disk I/O" eff_disk_io;
      if inherited land eff_nondet <> 0 && not (test_ctx d.file) then
        report "transitive-nondet" d "ambient nondeterminism" eff_nondet;
      if
        inherited land eff_clock <> 0
        && (workload_ctx d.file || scenario_ctx d.file)
      then report "transitive-clock" d "direct clock advancement" eff_clock)
    program.p_defs

(* ---------------- analysis driver ---------------- *)

let analyze sources =
  let col =
    {
      c_defs = [];
      c_extra = [];
      c_metrics = [];
      c_spans = [];
      c_events = [];
      c_viol = [];
      c_files = [];
    }
  in
  let parse_errors = ref [] in
  List.iter
    (fun (path, text) ->
      let lexbuf = Lexing.from_string text in
      Lexing.set_filename lexbuf path;
      match Parse.implementation lexbuf with
      | ast -> collect_file col path ast
      | exception exn ->
          parse_errors :=
            {
              rule = "parse";
              file = path;
              line = 1;
              message =
                Printf.sprintf "cannot parse: %s" (Printexc.to_string exn);
            }
            :: !parse_errors)
    sources;
  let defs = List.rev col.c_defs in
  let files = List.rev col.c_files in
  let fi_of = Hashtbl.create 16 in
  List.iter (fun fi -> Hashtbl.replace fi_of fi.fi_path fi) files;
  (* Alias-expand every body identifier up front: both the syntactic
     predicates and the resolver see through `module D = Disk`. *)
  List.iter
    (fun d ->
      match Hashtbl.find_opt fi_of d.file with
      | Some fi ->
          d.occs <- List.rev_map (fun (p, l) -> (expand_alias fi p, l)) d.occs
      | None -> ())
    defs;
  (* Call-graph edges. *)
  let idx : index = Hashtbl.create 256 in
  List.iter (fun d -> if not d.anon then index_add idx d.qname d) defs;
  List.iter (fun (qname, d) -> index_add idx qname d) col.c_extra;
  expand_includes idx files defs;
  List.iter
    (fun d ->
      let fi = Hashtbl.find_opt fi_of d.file in
      let opaque =
        match fi with Some fi -> fi.opaque | None -> []
      in
      List.iter
        (fun (path, _line) ->
          let s = String.concat "." path in
          d.direct <- d.direct lor eff_of_ident s;
          match path with
          | [ name ] ->
              (* Unqualified: same-module definitions only; locals and
                 stdlib carry no effect. *)
              List.iter
                (fun c -> if not (List.memq c d.callees) then
                    d.callees <- c :: d.callees)
                (List.filter
                   (fun c -> c.modpath = d.modpath)
                   (lookup idx (d.modpath @ [ name ])))
          | head :: _ ->
              if not (List.mem head opaque) then begin
                match lookup idx path with
                | _ :: _ as cs ->
                    List.iter
                      (fun c ->
                        if (not (c == d)) && not (List.memq c d.callees) then
                          d.callees <- c :: d.callees)
                      cs
                | [] ->
                    if not (benign_head head) then
                      if not (List.mem head d.unknowns) then
                        d.unknowns <- head :: d.unknowns
              end
          | [] -> ())
        d.occs)
    defs;
  fixpoint defs;
  let program =
    {
      p_defs = defs;
      p_files = files;
      p_metrics = List.rev col.c_metrics;
      p_spans = List.rev col.c_spans;
      p_events = List.rev col.c_events;
      p_violations = List.rev col.c_viol;
    }
  in
  syntactic_checks program;
  registration_checks program;
  transitive_checks program;
  program.p_violations <- program.p_violations @ !parse_errors;
  program.p_violations <-
    List.stable_sort
      (fun (a : violation) (b : violation) ->
        match compare a.file b.file with
        | 0 -> (
            match compare a.line b.line with
            | 0 -> compare a.rule b.rule
            | c -> c)
        | c -> c)
      program.p_violations;
  program

(* ---------------- queries (for tests and the CLI) ---------------- *)

let def_by_name program dotted =
  List.find_opt (fun d -> d.dotted = dotted && not d.anon) program.p_defs

let full_effects d = effect_names (d.direct lor d.from_calls)
let expose_effects d = effect_names d.expose
let callee_names d = List.sort compare (List.map (fun c -> c.dotted) d.callees)

(* ---------------- JSON helpers ---------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)

(* ---------------- effect-summary export ---------------- *)

(* Per-module effect tables: DESIGN.md's layering diagram, checkable. *)
let summary_json program =
  let b = Buffer.create 4096 in
  let modules = Hashtbl.create 64 in
  List.iter
    (fun d ->
      if not d.anon then begin
        let m = String.concat "." d.modpath in
        let prev = Option.value ~default:[] (Hashtbl.find_opt modules m) in
        Hashtbl.replace modules m (d :: prev)
      end)
    program.p_defs;
  let names =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) modules [])
  in
  Buffer.add_string b "{\n  \"schema\": \"lfs-lint-effects/1\",\n  \"modules\": {\n";
  List.iteri
    (fun i m ->
      let ds = List.rev (Hashtbl.find modules m) in
      let file = match ds with d :: _ -> d.file | [] -> "" in
      Buffer.add_string b
        (Printf.sprintf "    %s: {\n      \"file\": %s,\n" (json_string m)
           (json_string file));
      let abs = effect_names (absorb file) in
      if abs <> [] then
        Buffer.add_string b
          (Printf.sprintf "      \"absorbs\": [%s],\n"
             (String.concat ", " (List.map json_string abs)));
      Buffer.add_string b "      \"functions\": {\n";
      let seen = Hashtbl.create 16 in
      let ds =
        List.filter
          (fun d ->
            let n = d.dotted in
            if Hashtbl.mem seen n then false
            else begin
              Hashtbl.replace seen n ();
              true
            end)
          ds
      in
      List.iteri
        (fun j d ->
          let name = List.nth d.qname (List.length d.qname - 1) in
          Buffer.add_string b
            (Printf.sprintf "        %s: [%s]%s\n" (json_string name)
               (String.concat ", " (List.map json_string (full_effects d)))
               (if j = List.length ds - 1 then "" else ",")))
        ds;
      Buffer.add_string b "      }\n";
      Buffer.add_string b
        (Printf.sprintf "    }%s\n" (if i = List.length names - 1 then "" else ",")))
    names;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

(* ---------------- observability catalog ---------------- *)

type catalog = {
  cat_metrics : site list; (* sorted by name, first site wins *)
  cat_spans : site list;
  cat_events : site list;
}

let dedup_sites sites =
  let seen = Hashtbl.create 64 in
  let keep =
    List.filter
      (fun s ->
        if Hashtbl.mem seen s.s_name then false
        else begin
          Hashtbl.replace seen s.s_name ();
          true
        end)
      sites
  in
  List.sort (fun a b -> compare a.s_name b.s_name) keep

let catalog program =
  {
    cat_metrics = dedup_sites program.p_metrics;
    cat_spans = dedup_sites program.p_spans;
    cat_events = dedup_sites program.p_events;
  }

let catalog_json cat =
  let b = Buffer.create 4096 in
  let section name sites last =
    Buffer.add_string b (Printf.sprintf "  %s: [\n" (json_string name));
    List.iteri
      (fun i s ->
        Buffer.add_string b
          (Printf.sprintf "    { \"name\": %s, \"file\": %s, \"line\": %d }%s\n"
             (json_string s.s_name) (json_string s.s_file) s.s_line
             (if i = List.length sites - 1 then "" else ",")))
      sites;
    Buffer.add_string b (Printf.sprintf "  ]%s\n" (if last then "" else ","))
  in
  Buffer.add_string b "{\n  \"schema\": \"lfs-lint-catalog/1\",\n";
  section "metrics" cat.cat_metrics false;
  section "spans" cat.cat_spans false;
  section "events" cat.cat_events true;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* The doc block checked by --check-catalog; regenerate with
   --catalog-md after adding a metric, span or event. *)
let catalog_md cat =
  let b = Buffer.create 2048 in
  let names sites = List.map (fun s -> Printf.sprintf "`%s`" s.s_name) sites in
  Buffer.add_string b "<!-- lint-catalog:begin -->\n";
  Buffer.add_string b
    "_Generated by `lint.exe --catalog-md`; `dune runtest` fails on drift \
     (see `lint.exe --check-catalog`)._\n\n";
  Buffer.add_string b
    (Printf.sprintf "**Metrics** (%d): %s\n\n"
       (List.length cat.cat_metrics)
       (String.concat ", " (names cat.cat_metrics)));
  Buffer.add_string b
    (Printf.sprintf "**Spans** (%d): %s\n\n"
       (List.length cat.cat_spans)
       (String.concat ", " (names cat.cat_spans)));
  Buffer.add_string b
    (Printf.sprintf "**Events** (%d): %s\n"
       (List.length cat.cat_events)
       (String.concat ", " (names cat.cat_events)));
  Buffer.add_string b "<!-- lint-catalog:end -->\n";
  Buffer.contents b

(* Quoted tokens in a JSON baseline that look like metric names. *)
let baseline_metric_refs text =
  let out = ref [] in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    if text.[!i] = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && text.[!j] <> '"' && text.[!j] <> '\\' do incr j done;
      if !j < n && text.[!j] = '"' then begin
        let tok = String.sub text (!i + 1) (!j - !i - 1) in
        if metric_name_ok tok && not (List.mem tok !out) then
          out := tok :: !out;
        i := !j + 1
      end
      else i := !i + 1
    end
    else incr i
  done;
  List.rev !out

(* Backticked names on the **Metrics**/**Spans**/**Events** lines of
   the doc block between the lint-catalog markers. *)
let doc_catalog text =
  let lines = String.split_on_char '\n' text in
  let in_block = ref false in
  let metrics = ref [] and spans = ref [] and events = ref [] in
  let ticked line =
    let out = ref [] in
    let parts = String.split_on_char '`' line in
    List.iteri (fun i p -> if i mod 2 = 1 then out := p :: !out) parts;
    List.rev !out
  in
  List.iter
    (fun line ->
      if String.trim line = "<!-- lint-catalog:begin -->" then in_block := true
      else if String.trim line = "<!-- lint-catalog:end -->" then
        in_block := false
      else if !in_block then
        if String.starts_with ~prefix:"**Metrics**" line then
          metrics := ticked line
        else if String.starts_with ~prefix:"**Spans**" line then
          spans := ticked line
        else if String.starts_with ~prefix:"**Events**" line then
          events := ticked line)
    lines;
  (!metrics, !spans, !events)
