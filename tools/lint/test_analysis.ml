(* Unit tests for the whole-program analyzer core: call-graph
   construction (mutual recursion, include, aliased modules, unknown
   callees) and the effect fixpoint reaching a least fixed point on
   cyclic graphs.  Sources are given inline as (path, text) pairs; the
   paths choose the module naming and rule contexts exactly as real
   files would. *)

module A = Analysis

let failures = ref 0

let check name cond =
  if cond then Printf.printf "test %-42s ok\n" name
  else begin
    incr failures;
    Printf.printf "test %-42s FAILED\n" name
  end

let def program dotted =
  match A.def_by_name program dotted with
  | Some d -> d
  | None ->
      incr failures;
      Printf.printf "test: no def named %s\n" dotted;
      exit 1

let has program dotted eff = List.mem eff (A.full_effects (def program dotted))

let rules_of program file =
  List.filter_map
    (fun (v : A.violation) -> if v.A.file = file then Some v.A.rule else None)
    program.A.p_violations

(* --- mutual recursion: both members of the cycle get the effect --- *)

let () =
  let program =
    A.analyze
      [
        ( "lib/core/mut.ml",
          "let rec ping d n = if n = 0 then 0 else pong d (n - 1)\n\
           and pong d n = ignore (Third_party_disk.poke d); ping d n\n" );
      ]
  in
  check "mutual recursion: effect reaches both"
    (has program "Lfs_core.Mut.ping" "DiskIO"
    && has program "Lfs_core.Mut.pong" "DiskIO");
  check "mutual recursion: call edges both ways"
    (A.callee_names (def program "Lfs_core.Mut.ping") = [ "Lfs_core.Mut.pong" ]
    && A.callee_names (def program "Lfs_core.Mut.pong")
       = [ "Lfs_core.Mut.ping" ])

(* --- pure cycle: least fixed point is the empty summary --- *)

let () =
  let program =
    A.analyze
      [
        ( "lib/core/cyc.ml",
          "let rec even n = if n = 0 then true else odd (n - 1)\n\
           and odd n = if n = 0 then false else even (n - 1)\n" );
      ]
  in
  check "pure cycle: least fixpoint has no effects"
    (A.full_effects (def program "Lfs_core.Cyc.even") = []
    && A.full_effects (def program "Lfs_core.Cyc.odd") = [])

(* --- raw disk through two modules; include and alias resolution --- *)

let sources =
  [
    (* the raw site: a module that pokes the disk directly *)
    ( "lib/core/rawpoke.ml",
      "let nudge d = Disk.write d 0 (Bytes.create 512)\n" );
    (* re-export through include: B's callers reach A's bindings *)
    ("lib/core/reexport.ml", "include Rawpoke\n\nlet noop () = ()\n");
    (* alias to the re-export, call through the alias *)
    ( "lib/cache/warm.ml",
      "module R = Lfs_core.Reexport\n\nlet fill d = R.nudge d\n" );
    (* two calls away from the raw site *)
    ("lib/lfs/deep.ml", "let boot d = Lfs_cache.Warm.fill d\n");
  ]

let () =
  let program = A.analyze sources in
  check "raw site flagged syntactically"
    (List.mem "disk-io" (rules_of program "lib/core/rawpoke.ml"));
  check "include: re-export inherits and is flagged"
    (List.mem "transitive-disk-io" (rules_of program "lib/cache/warm.ml"));
  check "alias: call via module alias resolves"
    (has program "Lfs_cache.Warm.fill" "DiskIO");
  check "two calls away: transitive rule fires"
    (List.mem "transitive-disk-io" (rules_of program "lib/lfs/deep.ml"));
  check "two calls away: syntactic rules silent"
    (not (List.mem "disk-io" (rules_of program "lib/lfs/deep.ml")));
  check "witness chain names the raw primitive"
    (List.exists
       (fun (v : A.violation) ->
         v.A.file = "lib/lfs/deep.ml"
         && v.A.rule = "transitive-disk-io"
         && String.length v.A.message > 0)
       program.A.p_violations)

(* --- absorption: the sanctioned layer stops propagation --- *)

let () =
  let program =
    A.analyze
      [
        ( "lib/disk/io.ml",
          "let sync_read d blkno = Disk.read d blkno\n" );
        ( "lib/cache/user.ml",
          "module Io = Lfs_disk.Io\n\nlet load d b = Io.sync_read d b\n" );
      ]
  in
  check "absorption: Io caller stays clean"
    (not
       (List.mem "transitive-disk-io" (rules_of program "lib/cache/user.ml")));
  check "absorption: Io itself still flagged syntactically"
    (List.mem "disk-io" (rules_of program "lib/disk/io.ml"));
  check "absorption: exposure masked, work recorded"
    (A.expose_effects (def program "Lfs_disk.Io.sync_read") = []
    && has program "Lfs_disk.Io.sync_read" "DiskIO")

(* --- unknown callee fails closed to every effect --- *)

let () =
  let program =
    A.analyze
      [ ("lib/core/mystery.ml", "let go x = Third_party.transmogrify x\n") ]
  in
  check "unknown module: every effect assumed"
    (has program "Lfs_core.Mystery.go" "DiskIO"
    && has program "Lfs_core.Mystery.go" "AmbientNondet");
  check "unknown module: transitive rule fires"
    (List.mem "transitive-disk-io" (rules_of program "lib/core/mystery.ml"))

(* --- benign foreign modules carry no effect --- *)

let () =
  let program =
    A.analyze
      [
        ( "lib/core/tidy.ml",
          "let total xs = List.fold_left ( + ) 0 xs\n\
           let pick c = Rng.int c 10\n" );
      ]
  in
  check "benign modules: stdlib and project layers clean"
    (rules_of program "lib/core/tidy.ml" = [])

(* --- transitive clock: only workload/bench context is confined --- *)

let clock_sources tick_path =
  [
    ( "lib/util/ticker.ml",
      "let tick c = Clock.advance_us c 10_000\n" );
    (tick_path, "let run c = Ticker.tick c\n");
  ]

let () =
  let program = A.analyze (clock_sources "lib/workload/pulse.ml") in
  check "transitive clock: workload caller flagged"
    (List.mem "transitive-clock" (rules_of program "lib/workload/pulse.ml"));
  let program = A.analyze (clock_sources "lib/cache/pulse.ml") in
  check "transitive clock: non-workload caller exempt"
    (not (List.mem "transitive-clock" (rules_of program "lib/cache/pulse.ml")))

(* --- scenario-entry: raw fault entry points confined to the DSL --- *)

let entry_source path =
  [
    ( path,
      "let go io ops =\n\
      \  ignore (Lfs_disk.Faulty.attach io s);\n\
      \  Lfs_workload.Crashpoint.sweep `Lfs ops\n" );
  ]

let () =
  let program = A.analyze (entry_source "test/test_faults.ml") in
  check "scenario-entry: test caller flagged"
    (List.mem "scenario-entry" (rules_of program "test/test_faults.ml"));
  let program = A.analyze (entry_source "lib/cache/prober.ml") in
  check "scenario-entry: lib caller flagged"
    (List.mem "scenario-entry" (rules_of program "lib/cache/prober.ml"));
  let program = A.analyze (entry_source "lib/workload/crashpoint.ml") in
  check "scenario-entry: workload tree exempt"
    (not
       (List.mem "scenario-entry"
          (rules_of program "lib/workload/crashpoint.ml")));
  let program = A.analyze (entry_source "lib/scenario/scenario.ml") in
  check "scenario-entry: DSL compiler fires (allowlisted)"
    (List.mem "scenario-entry" (rules_of program "lib/scenario/scenario.ml"))

(* --- span safety: raw begin flagged, Fun.protect accepted --- *)

let () =
  let program =
    A.analyze
      [
        ( "lib/cache/spans.ml",
          "let bad bus f =\n\
          \  Bus.span_begin bus \"cache_fill\";\n\
          \  let r = f () in\n\
          \  Bus.span_end bus \"cache_fill\";\n\
          \  r\n\n\
           let good bus f =\n\
          \  Fun.protect\n\
          \    ~finally:(fun () -> Bus.span_end bus \"cache_drain\")\n\
          \    (fun () ->\n\
          \      Bus.span_begin bus \"cache_drain\";\n\
          \      f ())\n" );
      ]
  in
  let spans =
    List.filter
      (fun (v : A.violation) -> v.A.rule = "span-unsafe")
      program.A.p_violations
  in
  check "span-unsafe: raw begin flagged once"
    (List.length spans = 1 && (List.hd spans).A.line = 2)

(* --- effect summary export is well-formed --- *)

let () =
  let program = A.analyze sources in
  let json = A.summary_json program in
  check "summary json: schema and module present"
    (let has_sub sub =
       let n = String.length json and m = String.length sub in
       let rec go i =
         i + m <= n && (String.sub json i m = sub || go (i + 1))
       in
       go 0
     in
     has_sub "lfs-lint-effects/1" && has_sub "Lfs_cache.Warm"
     && has_sub "DiskIO")

let () =
  if !failures > 0 then begin
    Printf.printf "%d analyzer test(s) failed\n" !failures;
    exit 1
  end
  else print_endline "analyzer tests: all ok"
